// Robustness and edge-case coverage across modules: duplicate timestamps,
// degenerate shapes, parameter extremes, and cross-module invariants that
// the per-module tests do not reach.

#include <algorithm>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "baseline/bsbf.h"
#include "baseline/sf_index.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/exact_builder.h"
#include "graph/nndescent.h"
#include "mbi/mbi_index.h"

namespace mbi {
namespace {

// ------------------------------------------------- duplicate timestamps

class DuplicateTimestampFixture : public ::testing::Test {
 protected:
  static constexpr size_t kN = 240;
  static constexpr size_t kDim = 8;

  void SetUp() override {
    SyntheticParams gen;
    gen.dim = kDim;
    gen.seed = 5150;
    data_ = GenerateSynthetic(gen, kN);
    // Many vectors share a timestamp: batches of 10 arrive "at once".
    for (size_t i = 0; i < kN; ++i) {
      data_.timestamps[i] = static_cast<Timestamp>(i / 10);
    }
  }

  SyntheticData data_;
};

TEST_F(DuplicateTimestampFixture, BsbfHandlesDuplicates) {
  BsbfIndex bsbf(kDim, Metric::kL2);
  ASSERT_TRUE(
      bsbf.AddBatch(data_.vectors.data(), data_.timestamps.data(), kN).ok());
  // Window [3, 5): exactly timestamps 3 and 4 -> ids 30..49.
  SearchResult r = bsbf.Search(data_.vector(35), 50, TimeWindow{3, 5});
  ASSERT_EQ(r.size(), 20u);
  for (const Neighbor& nb : r) {
    EXPECT_GE(nb.id, 30);
    EXPECT_LT(nb.id, 50);
  }
}

TEST_F(DuplicateTimestampFixture, MbiFlatEqualsBsbfWithDuplicates) {
  MbiParams p;
  p.leaf_size = 16;  // leaf boundaries fall inside duplicate runs
  p.tau = 0.5;
  p.block_kind = BlockIndexKind::kFlat;
  MbiIndex index(kDim, Metric::kL2, p);
  BsbfIndex bsbf(kDim, Metric::kL2);
  ASSERT_TRUE(
      index.AddBatch(data_.vectors.data(), data_.timestamps.data(), kN).ok());
  ASSERT_TRUE(
      bsbf.AddBatch(data_.vectors.data(), data_.timestamps.data(), kN).ok());

  QueryContext ctx;
  SearchParams sp;
  sp.k = 8;
  for (Timestamp a = 0; a < 24; a += 3) {
    for (Timestamp b = a + 1; b <= 24; b += 5) {
      TimeWindow w{a, b};
      SearchResult got = index.Search(data_.vector(0), w, sp, &ctx);
      SearchResult want = bsbf.Search(data_.vector(0), 8, w);
      ASSERT_EQ(got.size(), want.size()) << "[" << a << "," << b << ")";
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id);
      }
    }
  }
}

TEST_F(DuplicateTimestampFixture, GraphKindRespectsDuplicateWindows) {
  MbiParams p;
  p.leaf_size = 30;
  p.build.degree = 8;
  p.build.exact_threshold = 1 << 20;
  MbiIndex index(kDim, Metric::kL2, p);
  ASSERT_TRUE(
      index.AddBatch(data_.vectors.data(), data_.timestamps.data(), kN).ok());
  QueryContext ctx;
  SearchParams sp;
  sp.k = 10;
  sp.max_candidates = 48;
  TimeWindow w{7, 12};
  SearchResult got = index.Search(data_.vector(0), w, sp, &ctx);
  for (const Neighbor& nb : got) {
    Timestamp t = index.store().GetTimestamp(nb.id);
    EXPECT_GE(t, 7);
    EXPECT_LT(t, 12);
  }
}

// ------------------------------------------------- NNDescent parameters

TEST(NnDescentParamsTest, MoreIterationsNeverHurtMuch) {
  SyntheticParams gen;
  gen.dim = 12;
  gen.seed = 21;
  SyntheticData data = GenerateSynthetic(gen, 1200);
  DistanceFunction dist(Metric::kL2, 12);
  KnnGraph exact = BuildExactKnnGraph(data.vectors.data(), 1200, dist, 12);

  auto edge_recall = [&](const KnnGraph& g) {
    size_t hits = 0, total = 0;
    for (NodeId v = 0; v < 1200; ++v) {
      auto a = g.Neighbors(v);
      for (NodeId t : exact.Neighbors(v)) {
        if (t == kInvalidNode) continue;
        ++total;
        hits += std::find(a.begin(), a.end(), t) != a.end();
      }
    }
    return static_cast<double>(hits) / total;
  };

  GraphBuildParams p1;
  p1.degree = 12;
  p1.max_iterations = 1;
  GraphBuildParams p8 = p1;
  p8.max_iterations = 8;
  double r1 = edge_recall(BuildNnDescentGraph(data.vectors.data(), 1200, dist, p1));
  double r8 = edge_recall(BuildNnDescentGraph(data.vectors.data(), 1200, dist, p8));
  EXPECT_GT(r8, r1);      // iterating improves the graph
  EXPECT_GE(r8, 0.85);
}

TEST(NnDescentParamsTest, HigherRhoConvergesFaster) {
  SyntheticParams gen;
  gen.dim = 8;
  gen.seed = 22;
  SyntheticData data = GenerateSynthetic(gen, 800);
  DistanceFunction dist(Metric::kL2, 8);
  GraphBuildParams low;
  low.degree = 10;
  low.rho = 0.3;
  low.max_iterations = 3;
  GraphBuildParams high = low;
  high.rho = 1.0;
  KnnGraph exact = BuildExactKnnGraph(data.vectors.data(), 800, dist, 10);
  auto edge_recall = [&](const KnnGraph& g) {
    size_t hits = 0, total = 0;
    for (NodeId v = 0; v < 800; ++v) {
      auto a = g.Neighbors(v);
      for (NodeId t : exact.Neighbors(v)) {
        if (t == kInvalidNode) continue;
        ++total;
        hits += std::find(a.begin(), a.end(), t) != a.end();
      }
    }
    return static_cast<double>(hits) / total;
  };
  EXPECT_GE(edge_recall(BuildNnDescentGraph(data.vectors.data(), 800, dist,
                                            high)) +
                0.02,
            edge_recall(BuildNnDescentGraph(data.vectors.data(), 800, dist,
                                            low)));
}

// ------------------------------------------------- search parameters

class SearchParamFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticParams gen;
    gen.dim = 16;
    gen.seed = 4242;
    data_ = GenerateSynthetic(gen, 1500);
    store_ = std::make_unique<VectorStore>(16, Metric::kL2);
    ASSERT_TRUE(store_
                    ->AppendBatch(data_.vectors.data(),
                                  data_.timestamps.data(), 1500)
                    .ok());
    graph_ = BuildExactKnnGraph(data_.vectors.data(), 1500, store_->distance(),
                                16);
    queries_ = GenerateQueries(gen, 20);
  }

  double MeanRecallWith(const SearchParams& p) {
    GraphSearcher searcher;
    Rng rng(1);
    double total = 0;
    for (size_t qi = 0; qi < 20; ++qi) {
      const float* q = queries_.data() + qi * 16;
      TopKHeap heap(p.k);
      searcher.Search(*store_, graph_, IdRange{0, 1500}, q, p, nullptr, &rng,
                      &heap);
      total += RecallAtK(heap.ExtractSorted(),
                         BsbfIndex::Query(*store_, q, p.k, TimeWindow::All()),
                         p.k);
    }
    return total / 20;
  }

  SyntheticData data_;
  std::unique_ptr<VectorStore> store_;
  KnnGraph graph_;
  std::vector<float> queries_;
};

TEST_F(SearchParamFixture, LargerCandidatePoolRaisesRecall) {
  SearchParams small;
  small.k = 10;
  small.max_candidates = 12;
  small.num_entry_points = 4;
  SearchParams large = small;
  large.max_candidates = 128;
  EXPECT_GT(MeanRecallWith(large), MeanRecallWith(small));
  EXPECT_GE(MeanRecallWith(large), 0.95);
}

TEST_F(SearchParamFixture, PoolSmallerThanKIsClampedToK) {
  SearchParams p;
  p.k = 20;
  p.max_candidates = 4;  // < k: capacity must clamp up to k
  p.num_entry_points = 4;
  GraphSearcher searcher;
  Rng rng(2);
  TopKHeap heap(20);
  searcher.Search(*store_, graph_, IdRange{0, 1500}, queries_.data(), p,
                  nullptr, &rng, &heap);
  EXPECT_EQ(heap.size(), 20u);
}

TEST_F(SearchParamFixture, ManyEntryPointsClampToBlockSize) {
  SearchParams p;
  p.k = 5;
  p.max_candidates = 2000;   // > n
  p.num_entry_points = 5000;  // > n
  GraphSearcher searcher;
  Rng rng(3);
  TopKHeap heap(5);
  // Must terminate and return k results despite params exceeding n.
  searcher.Search(*store_, graph_, IdRange{0, 1500}, queries_.data(), p,
                  nullptr, &rng, &heap);
  EXPECT_EQ(heap.size(), 5u);
}

// ------------------------------------------------- tree partition property

TEST(BlockTreePartitionTest, EachLevelPartitionsTheData) {
  for (int64_t n : {64, 100, 250, 1023}) {
    BlockTreeShape shape(n, 16);
    for (int32_t h = 0; h <= shape.root_height(); ++h) {
      int64_t covered = 0;
      for (int64_t pos = 0;; ++pos) {
        IdRange r = shape.NodeRange({h, pos});
        if (r.Empty()) break;
        EXPECT_EQ(r.begin, covered);  // contiguous, gap-free
        covered = r.end;
      }
      EXPECT_EQ(covered, n) << "level " << h << " n " << n;
    }
  }
}

TEST(BlockTreePartitionTest, ParentRangeIsUnionOfChildren) {
  BlockTreeShape shape(1000, 13);
  for (int32_t h = 1; h <= shape.root_height(); ++h) {
    for (int64_t pos = 0; pos < 8; ++pos) {
      IdRange parent = shape.NodeRange({h, pos});
      IdRange left = shape.NodeRange({h - 1, 2 * pos});
      IdRange right = shape.NodeRange({h - 1, 2 * pos + 1});
      if (parent.Empty()) continue;
      EXPECT_EQ(parent.begin, left.begin);
      EXPECT_EQ(parent.end, right.Empty() ? left.end : right.end);
    }
  }
}

// ------------------------------------------------- misc index edge cases

TEST(MbiEdgeTest, LeafSizeOneWorks) {
  MbiParams p;
  p.leaf_size = 1;
  p.build.degree = 4;
  p.build.exact_threshold = 1 << 20;
  MbiIndex index(4, Metric::kL2, p);
  SyntheticParams gen;
  gen.dim = 4;
  SyntheticData data = GenerateSynthetic(gen, 33);
  ASSERT_TRUE(
      index.AddBatch(data.vectors.data(), data.timestamps.data(), 33).ok());
  EXPECT_EQ(static_cast<int64_t>(index.num_blocks()),
            BlockTreeShape::BlocksForLeaves(33));
  QueryContext ctx;
  SearchParams sp;
  sp.k = 3;
  SearchResult r = index.Search(data.vector(5), TimeWindow{0, 33}, sp, &ctx);
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(r[0].id, 5);
}

TEST(MbiEdgeTest, SingleVectorIndex) {
  MbiParams p;
  p.leaf_size = 8;
  MbiIndex index(3, Metric::kL2, p);
  float v[3] = {1, 2, 3};
  ASSERT_TRUE(index.Add(v, 100).ok());
  QueryContext ctx;
  SearchParams sp;
  sp.k = 5;
  SearchResult r = index.Search(v, TimeWindow{100, 101}, sp, &ctx);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].id, 0);
  EXPECT_TRUE(index.Search(v, TimeWindow{101, 200}, sp, &ctx).empty());
  EXPECT_TRUE(index.Search(v, TimeWindow{0, 100}, sp, &ctx).empty());
}

TEST(MbiEdgeTest, KLargerThanData) {
  MbiParams p;
  p.leaf_size = 4;
  p.build.degree = 4;
  p.build.exact_threshold = 1 << 20;
  MbiIndex index(2, Metric::kL2, p);
  for (int i = 0; i < 10; ++i) {
    float v[2] = {static_cast<float>(i), 0};
    ASSERT_TRUE(index.Add(v, i).ok());
  }
  QueryContext ctx;
  SearchParams sp;
  sp.k = 50;
  sp.max_candidates = 64;
  sp.epsilon = 1.4f;
  sp.num_entry_points = 8;
  float q[2] = {5, 0};
  SearchResult r = index.Search(q, TimeWindow::All(), sp, &ctx);
  // Graph search is approximate, but with entries >= n it must find all 10.
  EXPECT_EQ(r.size(), 10u);
}

TEST(MbiEdgeTest, NegativeTimestampsWork) {
  MbiParams p;
  p.leaf_size = 4;
  p.block_kind = BlockIndexKind::kFlat;
  MbiIndex index(2, Metric::kL2, p);
  for (int i = 0; i < 12; ++i) {
    float v[2] = {static_cast<float>(i), 0};
    ASSERT_TRUE(index.Add(v, i - 100).ok());  // timestamps -100..-89
  }
  QueryContext ctx;
  SearchParams sp;
  sp.k = 3;
  SearchResult r = index.Search(index.store().GetVector(3),
                                TimeWindow{-98, -94}, sp, &ctx);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 3);
}

TEST(MbiEdgeTest, InvertedWindowReturnsNothing) {
  MbiParams p;
  p.leaf_size = 4;
  MbiIndex index(2, Metric::kL2, p);
  float v[2] = {0, 0};
  ASSERT_TRUE(index.Add(v, 5).ok());
  QueryContext ctx;
  SearchParams sp;
  EXPECT_TRUE(index.Search(v, TimeWindow{10, 5}, sp, &ctx).empty());
}

// ------------------------------------- input validation at the API boundary

class InputValidationFixture : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 4;

  void SetUp() override {
    for (int i = 0; i < 20; ++i) {
      for (size_t d = 0; d < kDim; ++d) {
        good_.push_back(static_cast<float>(i + 1) * 0.25f +
                        static_cast<float>(d));
      }
      ts_.push_back(i);
    }
    nan_query_.assign(kDim, 1.0f);
    nan_query_[2] = std::numeric_limits<float>::quiet_NaN();
    inf_query_.assign(kDim, 1.0f);
    inf_query_[0] = std::numeric_limits<float>::infinity();
  }

  std::vector<float> good_, nan_query_, inf_query_;
  std::vector<Timestamp> ts_;
};

TEST_F(InputValidationFixture, AddRejectsNonFiniteVectors) {
  MbiParams p;
  p.leaf_size = 4;
  MbiIndex index(kDim, Metric::kL2, p);
  EXPECT_EQ(index.Add(nan_query_.data(), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index.Add(inf_query_.data(), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index.size(), 0u);  // nothing partially applied

  BsbfIndex bsbf(kDim, Metric::kL2);
  EXPECT_EQ(bsbf.Add(nan_query_.data(), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(InputValidationFixture, AddBatchReportsRowsDurablyApplied) {
  MbiParams p;
  p.leaf_size = 4;
  MbiIndex index(kDim, Metric::kL2, p);

  // Poison row 13 of 20: the first 13 rows stay applied and are queryable.
  std::vector<float> batch = good_;
  batch[13 * kDim + 1] = std::numeric_limits<float>::quiet_NaN();
  size_t applied = 999;
  Status s = index.AddBatch(batch.data(), ts_.data(), ts_.size(), false,
                            &applied);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(applied, 13u);
  EXPECT_EQ(index.size(), 13u);
  EXPECT_NE(s.message().find("13 rows durably applied"), std::string::npos)
      << s.message();

  QueryContext ctx;
  SearchParams sp;
  sp.k = 3;
  SearchResult r = index.Search(good_.data(), TimeWindow::All(), sp, &ctx);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.completion, Completion::kComplete);
}

TEST_F(InputValidationFixture, SearchRejectsNonFiniteQueriesEverywhere) {
  MbiParams p;
  p.leaf_size = 4;
  MbiIndex index(kDim, Metric::kL2, p);
  ASSERT_TRUE(index.AddBatch(good_.data(), ts_.data(), ts_.size()).ok());
  QueryContext ctx;
  SearchParams sp;
  sp.k = 3;
  SearchResult r = index.Search(nan_query_.data(), TimeWindow::All(), sp,
                                &ctx);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.completion, Completion::kInvalidArgument);
  r = index.Search(inf_query_.data(), TimeWindow::All(), sp, &ctx);
  EXPECT_EQ(r.completion, Completion::kInvalidArgument);

  BsbfIndex bsbf(kDim, Metric::kL2);
  ASSERT_TRUE(bsbf.AddBatch(good_.data(), ts_.data(), ts_.size()).ok());
  SearchResult b = bsbf.Search(nan_query_.data(), 3, TimeWindow::All());
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.completion, Completion::kInvalidArgument);

  GraphBuildParams gp;
  gp.degree = 4;
  SfIndex sf(kDim, Metric::kL2, gp);
  ASSERT_TRUE(sf.AddBatch(good_.data(), ts_.data(), ts_.size()).ok());
  sf.Build();
  SearchResult f = sf.Search(inf_query_.data(), TimeWindow::All(), sp, &ctx);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.completion, Completion::kInvalidArgument);
}

TEST_F(InputValidationFixture, DegenerateQueryParamsGiveEmptyCompleteResult) {
  MbiParams p;
  p.leaf_size = 4;
  MbiIndex index(kDim, Metric::kL2, p);
  ASSERT_TRUE(index.AddBatch(good_.data(), ts_.data(), ts_.size()).ok());
  QueryContext ctx;

  // k == 0 asks for nothing — trivially complete, not an error.
  SearchParams sp;
  sp.k = 0;
  SearchResult r = index.Search(good_.data(), TimeWindow::All(), sp, &ctx);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.completion, Completion::kComplete);

  // An inverted window holds no vectors — same contract.
  sp.k = 3;
  r = index.Search(good_.data(), TimeWindow{10, 2}, sp, &ctx);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.completion, Completion::kComplete);

  // BSBF honors the same contract for k == 0.
  BsbfIndex bsbf(kDim, Metric::kL2);
  ASSERT_TRUE(bsbf.AddBatch(good_.data(), ts_.data(), ts_.size()).ok());
  SearchResult b = bsbf.Search(good_.data(), 0, TimeWindow::All());
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.completion, Completion::kComplete);
}

}  // namespace
}  // namespace mbi
