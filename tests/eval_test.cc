// Evaluation utilities: recall math, workload generation, Pareto logic,
// ground-truth computation.

#include <vector>

#include <gtest/gtest.h>

#include "baseline/bsbf.h"
#include "data/synthetic.h"
#include "eval/ground_truth.h"
#include "eval/pareto.h"
#include "eval/recall.h"
#include "eval/workload.h"
#include "util/thread_pool.h"

namespace mbi {
namespace {

SearchResult R(std::initializer_list<VectorId> ids) {
  SearchResult out;
  float d = 0;
  for (VectorId id : ids) out.push_back({d += 1.0f, id});
  return out;
}

// ------------------------------------------------------------- recall

TEST(RecallTest, PerfectMatch) {
  EXPECT_DOUBLE_EQ(RecallAtK(R({1, 2, 3}), R({1, 2, 3}), 3), 1.0);
}

TEST(RecallTest, OrderIrrelevant) {
  EXPECT_DOUBLE_EQ(RecallAtK(R({3, 1, 2}), R({1, 2, 3}), 3), 1.0);
}

TEST(RecallTest, PartialMatch) {
  EXPECT_DOUBLE_EQ(RecallAtK(R({1, 2, 9}), R({1, 2, 3}), 3), 2.0 / 3.0);
}

TEST(RecallTest, NoMatch) {
  EXPECT_DOUBLE_EQ(RecallAtK(R({7, 8, 9}), R({1, 2, 3}), 3), 0.0);
}

TEST(RecallTest, EmptyTruthIsPerfect) {
  EXPECT_DOUBLE_EQ(RecallAtK(R({}), R({}), 5), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(R({1}), R({}), 5), 1.0);
}

TEST(RecallTest, TruthSmallerThanKUsesTruthSize) {
  // Window held only 2 vectors; finding both = recall 1.
  EXPECT_DOUBLE_EQ(RecallAtK(R({1, 2}), R({1, 2}), 10), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(R({1}), R({1, 2}), 10), 0.5);
}

TEST(RecallTest, ApproxShorterThanK) {
  EXPECT_DOUBLE_EQ(RecallAtK(R({1}), R({1, 2, 3}), 3), 1.0 / 3.0);
}

TEST(RecallTest, OnlyFirstKOfApproxCount) {
  // k = 2: the third approx entry must not contribute.
  EXPECT_DOUBLE_EQ(RecallAtK(R({9, 1, 2}), R({1, 2}), 2), 0.5);
}

TEST(RecallTest, MeanRecall) {
  std::vector<SearchResult> approx = {R({1, 2}), R({1, 9})};
  std::vector<SearchResult> exact = {R({1, 2}), R({1, 2})};
  EXPECT_DOUBLE_EQ(MeanRecall(approx, exact, 2), 0.75);
}

// ------------------------------------------------------------- workload

class WorkloadFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticParams gen;
    gen.dim = 4;
    gen.seed = 3;
    data_ = GenerateSynthetic(gen, 1000);
    store_ = std::make_unique<VectorStore>(4, Metric::kL2);
    ASSERT_TRUE(store_
                    ->AppendBatch(data_.vectors.data(),
                                  data_.timestamps.data(), 1000)
                    .ok());
  }
  SyntheticData data_;
  std::unique_ptr<VectorStore> store_;
};

TEST_F(WorkloadFixture, WindowsHaveRequestedFraction) {
  for (double f : {0.01, 0.1, 0.5, 0.95, 1.0}) {
    auto wl = MakeWindowWorkload(*store_, f, 50, 10, 1);
    ASSERT_EQ(wl.size(), 50u);
    for (const auto& wq : wl) {
      EXPECT_NEAR(static_cast<double>(wq.window_count) / 1000.0, f, 0.002)
          << "fraction " << f;
      EXPECT_LT(wq.query_index, 10u);
    }
  }
}

TEST_F(WorkloadFixture, DeterministicInSeed) {
  auto a = MakeWindowWorkload(*store_, 0.3, 20, 5, 42);
  auto b = MakeWindowWorkload(*store_, 0.3, 20, 5, 42);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].window, b[i].window);
    EXPECT_EQ(a[i].query_index, b[i].query_index);
  }
}

TEST_F(WorkloadFixture, DifferentSeedsDiffer) {
  auto a = MakeWindowWorkload(*store_, 0.3, 20, 5, 1);
  auto b = MakeWindowWorkload(*store_, 0.3, 20, 5, 2);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].window == b[i].window) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST_F(WorkloadFixture, QueryIndicesCycle) {
  auto wl = MakeWindowWorkload(*store_, 0.5, 10, 3, 9);
  for (size_t i = 0; i < wl.size(); ++i) {
    EXPECT_EQ(wl[i].query_index, i % 3);
  }
}

// ------------------------------------------------------------- ground truth

TEST_F(WorkloadFixture, GroundTruthMatchesBsbfAndParallelMatchesSerial) {
  auto queries = GenerateQueries({.dim = 4, .seed = 3}, 10);
  auto wl = MakeWindowWorkload(*store_, 0.4, 30, 10, 77);
  auto serial = ComputeGroundTruth(*store_, queries.data(), wl, 5);
  ThreadPool pool(4);
  auto parallel = ComputeGroundTruth(*store_, queries.data(), wl, 5, &pool);
  ASSERT_EQ(serial.size(), wl.size());
  for (size_t i = 0; i < wl.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]);
    SearchResult direct = BsbfIndex::Query(
        *store_, queries.data() + wl[i].query_index * 4, 5, wl[i].window);
    EXPECT_EQ(serial[i], direct);
  }
}

// ------------------------------------------------------------- pareto

TEST(ParetoTest, DefaultGridMatchesPaper) {
  auto grid = DefaultEpsilonGrid();
  ASSERT_EQ(grid.size(), 21u);
  EXPECT_FLOAT_EQ(grid.front(), 1.0f);
  EXPECT_FLOAT_EQ(grid.back(), 1.4f);
  EXPECT_NEAR(grid[1] - grid[0], 0.02f, 1e-6);
}

TEST(ParetoTest, BestQpsAtRecallPicksFastestQualifying) {
  std::vector<ParetoPoint> pts = {
      {1.0f, 0.90, 5000}, {1.1f, 0.995, 3000}, {1.2f, 0.997, 2500},
      {1.3f, 0.999, 1000}};
  auto best = BestQpsAtRecall(pts, 0.995);
  EXPECT_TRUE(best.achieved);
  EXPECT_DOUBLE_EQ(best.qps, 3000);
  EXPECT_FLOAT_EQ(best.epsilon, 1.1f);
}

TEST(ParetoTest, BestQpsFallsBackToHighestRecall) {
  std::vector<ParetoPoint> pts = {{1.0f, 0.5, 5000}, {1.4f, 0.8, 1000}};
  auto best = BestQpsAtRecall(pts, 0.995);
  EXPECT_FALSE(best.achieved);
  EXPECT_DOUBLE_EQ(best.recall, 0.8);
}

TEST(ParetoTest, FrontierRemovesDominatedPoints) {
  std::vector<ParetoPoint> pts = {
      {1.0f, 0.9, 100}, {1.1f, 0.95, 200},  // dominates the first
      {1.2f, 0.99, 50}};
  auto frontier = ParetoFrontier(pts);
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_DOUBLE_EQ(frontier[0].recall, 0.95);
  EXPECT_DOUBLE_EQ(frontier[1].recall, 0.99);
}

TEST_F(WorkloadFixture, SweepEpsilonMeasuresRecallAndQps) {
  auto queries = GenerateQueries({.dim = 4, .seed = 3}, 5);
  auto wl = MakeWindowWorkload(*store_, 0.5, 10, 5, 7);
  auto truth = ComputeGroundTruth(*store_, queries.data(), wl, 5);

  // A fake "method": exact at eps >= 1.2, garbage below.
  auto run = [&](const WindowQuery& wq, float eps) -> SearchResult {
    if (eps >= 1.2f) {
      return BsbfIndex::Query(*store_, queries.data() + wq.query_index * 4, 5,
                              wq.window);
    }
    return {};
  };
  auto points = SweepEpsilon(wl, truth, 5, {1.0f, 1.2f, 1.4f}, run);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].recall, 0.01);
  EXPECT_DOUBLE_EQ(points[1].recall, 1.0);
  EXPECT_DOUBLE_EQ(points[2].recall, 1.0);
  for (const auto& p : points) EXPECT_GT(p.qps, 0.0);
}

}  // namespace
}  // namespace mbi
