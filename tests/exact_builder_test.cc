// Exact kNN-graph construction verified against an independent naive build.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "graph/exact_builder.h"
#include "util/rng.h"

namespace mbi {
namespace {

std::vector<float> RandomData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n * dim);
  for (auto& x : data) x = rng.NextFloat();
  return data;
}

// Naive: for each node, sort all others by distance.
std::vector<std::vector<NodeId>> NaiveKnn(const std::vector<float>& data,
                                          size_t n, const DistanceFunction& d,
                                          size_t k) {
  std::vector<std::vector<NodeId>> out(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::pair<float, NodeId>> all;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      all.push_back({d(data.data() + i * d.dim(), data.data() + j * d.dim()),
                     static_cast<NodeId>(j)});
    }
    std::sort(all.begin(), all.end());
    for (size_t s = 0; s < std::min(k, all.size()); ++s) {
      out[i].push_back(all[s].second);
    }
  }
  return out;
}

TEST(ExactBuilderTest, MatchesNaiveOnRandomData) {
  const size_t n = 50, dim = 8, k = 5;
  auto data = RandomData(n, dim, 11);
  DistanceFunction dist(Metric::kL2, dim);
  KnnGraph g = BuildExactKnnGraph(data.data(), n, dist, k);
  auto naive = NaiveKnn(data, n, dist, k);
  for (size_t v = 0; v < n; ++v) {
    auto nb = g.Neighbors(static_cast<NodeId>(v));
    ASSERT_EQ(g.NeighborCount(static_cast<NodeId>(v)), k);
    for (size_t s = 0; s < k; ++s) {
      EXPECT_EQ(nb[s], naive[v][s]) << "node " << v << " slot " << s;
    }
  }
}

TEST(ExactBuilderTest, AngularMetric) {
  const size_t n = 30, dim = 6, k = 4;
  auto data = RandomData(n, dim, 22);
  DistanceFunction dist(Metric::kAngular, dim);
  KnnGraph g = BuildExactKnnGraph(data.data(), n, dist, k);
  auto naive = NaiveKnn(data, n, dist, k);
  for (size_t v = 0; v < n; ++v) {
    auto nb = g.Neighbors(static_cast<NodeId>(v));
    for (size_t s = 0; s < k; ++s) EXPECT_EQ(nb[s], naive[v][s]);
  }
}

TEST(ExactBuilderTest, NeighborsSortedByDistance) {
  const size_t n = 40, dim = 4, k = 10;
  auto data = RandomData(n, dim, 33);
  DistanceFunction dist(Metric::kL2, dim);
  KnnGraph g = BuildExactKnnGraph(data.data(), n, dist, k);
  for (size_t v = 0; v < n; ++v) {
    auto nb = g.Neighbors(static_cast<NodeId>(v));
    float prev = -1;
    for (size_t s = 0; s < k; ++s) {
      ASSERT_NE(nb[s], kInvalidNode);
      float d = dist(data.data() + v * dim, data.data() + nb[s] * dim);
      EXPECT_GE(d, prev);
      prev = d;
    }
  }
}

TEST(ExactBuilderTest, NoSelfLoops) {
  const size_t n = 25, dim = 3;
  auto data = RandomData(n, dim, 44);
  DistanceFunction dist(Metric::kL2, dim);
  KnnGraph g = BuildExactKnnGraph(data.data(), n, dist, 6);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId nb : g.Neighbors(v)) {
      EXPECT_NE(nb, v);
    }
  }
}

TEST(ExactBuilderTest, DegreeLargerThanNodes) {
  const size_t n = 4, dim = 2;
  auto data = RandomData(n, dim, 55);
  DistanceFunction dist(Metric::kL2, dim);
  KnnGraph g = BuildExactKnnGraph(data.data(), n, dist, 10);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(g.NeighborCount(v), n - 1);  // everyone else, no more
  }
}

TEST(ExactBuilderTest, SingleNode) {
  auto data = RandomData(1, 5, 66);
  DistanceFunction dist(Metric::kL2, 5);
  KnnGraph g = BuildExactKnnGraph(data.data(), 1, dist, 3);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.NeighborCount(0), 0u);
}

TEST(ExactBuilderTest, EmptyInput) {
  DistanceFunction dist(Metric::kL2, 5);
  KnnGraph g = BuildExactKnnGraph(nullptr, 0, dist, 3);
  EXPECT_EQ(g.num_nodes(), 0u);
}

}  // namespace
}  // namespace mbi
