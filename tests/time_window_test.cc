// TimeWindow semantics and the overlap ratio of paper Section 4.3.

#include <gtest/gtest.h>

#include "core/time_window.h"

namespace mbi {
namespace {

TEST(TimeWindowTest, ContainsIsHalfOpen) {
  TimeWindow w{10, 20};
  EXPECT_FALSE(w.Contains(9));
  EXPECT_TRUE(w.Contains(10));
  EXPECT_TRUE(w.Contains(19));
  EXPECT_FALSE(w.Contains(20));
}

TEST(TimeWindowTest, AllContainsEverything) {
  TimeWindow w = TimeWindow::All();
  EXPECT_TRUE(w.Contains(0));
  EXPECT_TRUE(w.Contains(-1000000));
  EXPECT_TRUE(w.Contains(1000000));
}

TEST(TimeWindowTest, LengthAndEmpty) {
  EXPECT_EQ((TimeWindow{3, 8}).Length(), 5);
  EXPECT_EQ((TimeWindow{8, 3}).Length(), 0);
  EXPECT_TRUE((TimeWindow{5, 5}).Empty());
  EXPECT_FALSE((TimeWindow{5, 6}).Empty());
}

TEST(TimeWindowTest, OverlapLength) {
  TimeWindow a{0, 10};
  EXPECT_EQ(a.OverlapLength({5, 15}), 5);
  EXPECT_EQ(a.OverlapLength({10, 20}), 0);  // touching, half-open
  EXPECT_EQ(a.OverlapLength({-5, 0}), 0);
  EXPECT_EQ(a.OverlapLength({2, 4}), 2);
  EXPECT_EQ(a.OverlapLength({-5, 25}), 10);
}

TEST(OverlapRatioTest, FullCoverIsOne) {
  EXPECT_DOUBLE_EQ(OverlapRatio({0, 100}, {20, 40}), 1.0);
}

TEST(OverlapRatioTest, NoOverlapIsZero) {
  EXPECT_DOUBLE_EQ(OverlapRatio({0, 10}, {10, 20}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapRatio({30, 40}, {10, 20}), 0.0);
}

TEST(OverlapRatioTest, PartialCover) {
  // Query covers half of the block.
  EXPECT_DOUBLE_EQ(OverlapRatio({0, 10}, {5, 15}), 0.5);
  // Query inside the block.
  EXPECT_DOUBLE_EQ(OverlapRatio({12, 14}, {10, 20}), 0.2);
}

TEST(OverlapRatioTest, DegenerateBlockWindow) {
  // Block of zero time width (duplicate timestamps): fully covered when the
  // query contains the instant, otherwise disjoint.
  EXPECT_DOUBLE_EQ(OverlapRatio({0, 10}, {5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapRatio({6, 10}, {5, 5}), 0.0);
}

TEST(OverlapRatioTest, RatioIsNeverAboveOne) {
  for (Timestamp qs = -5; qs < 25; ++qs) {
    for (Timestamp qe = qs + 1; qe < 30; ++qe) {
      double r = OverlapRatio({qs, qe}, {10, 20});
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

}  // namespace
}  // namespace mbi
